package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sfcp"
	"sfcp/internal/codec"
	"sfcp/internal/jobs"
	"sfcp/internal/workload"
)

func jobSnapshot(t *testing.T, ts *httptest.Server, id string) jobs.Snapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job %s status: %d %s", id, resp.StatusCode, data)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func pollUntil(t *testing.T, ts *httptest.Server, id string, want jobs.State, timeout time.Duration) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		snap := jobSnapshot(t, ts, id)
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s: terminal %s (error %q), want %s", id, snap.State, snap.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, snap.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestE2EJobsHugeBinary is the async half of the scale acceptance test: a
// 10^7-element instance is submitted as a job via the binary ingest path,
// polled to done, and its labels fetched back as a binary stream — the
// HTTP connections involved each last milliseconds even though the solve
// runs for a minute-class duration.
func TestE2EJobsHugeBinary(t *testing.T) {
	n := 10_000_000
	// Pinned for the deterministic workload at full scale (cross-checked by
	// linear, hopcroft and native-parallel in TestE2EHugeBinary).
	wantClasses := 8529291
	if raceEnabled || testing.Short() {
		n = 200_000
	}
	ts := newDaemon(t, "-max-n", fmt.Sprint(32<<20), "-max-body", fmt.Sprint(256<<20))
	ins := sfcp.Instance(workload.RandomFunction(99, n, 4))
	if n != 10_000_000 {
		want, err := sfcp.SolveWith(ins, sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
		if err != nil {
			t.Fatal(err)
		}
		wantClasses = want.NumClasses
	}

	var buf bytes.Buffer
	buf.Grow(codec.EncodedSize(ins.F, ins.B))
	if err := ins.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs?algorithm=linear", sfcp.BinaryMediaType,
		bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.N != n {
		t.Fatalf("submitted n = %d, want %d", snap.N, n)
	}

	done := pollUntil(t, ts, snap.ID, jobs.StateDone, 5*time.Minute)
	if done.NumClasses != wantClasses {
		t.Fatalf("num_classes = %d, want %d", done.NumClasses, wantClasses)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/jobs/"+snap.ID+"/result", nil)
	req.Header.Set("Accept", sfcp.BinaryMediaType)
	rresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK || rresp.Header.Get("Content-Type") != sfcp.BinaryMediaType {
		t.Fatalf("result: %d %q", rresp.StatusCode, rresp.Header.Get("Content-Type"))
	}
	labels, err := sfcp.DecodeLabelsBinary(rresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != n {
		t.Fatalf("decoded %d labels, want %d", len(labels), n)
	}
	if got := sfcp.NumClasses(labels); got != wantClasses {
		t.Fatalf("labels carry %d classes, want %d", got, wantClasses)
	}
}

// TestE2EJobCancelRunningPRAM submits a parallel-pram simulation sized to
// run for many seconds, cancels it mid-flight, and checks the job reaches
// cancelled within one scheduler beat (the solver's cooperative check plus
// dispatcher finalization), not after the solve would have finished.
func TestE2EJobCancelRunningPRAM(t *testing.T) {
	n := 150_000
	if raceEnabled || testing.Short() {
		n = 50_000
	}
	ts := newDaemon(t)
	ins := sfcp.Instance(workload.RandomFunction(7, n, 3))
	body, err := json.Marshal(map[string]any{"algorithm": "parallel-pram", "f": ins.F, "b": ins.B})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, ts, snap.ID, jobs.StateRunning, time.Minute)

	cancelAt := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+snap.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", dresp.StatusCode)
	}
	cancelled := pollUntil(t, ts, snap.ID, jobs.StateCancelled, 30*time.Second)
	latency := time.Since(cancelAt)
	t.Logf("n=%d cancelled after %v (state %s)", n, latency, cancelled.State)
	// The cooperative check fires at the next simulated PRAM step — far
	// sooner than the full solve (tens of seconds at this size). A bound of
	// a few seconds proves the solve aborted rather than drained.
	if latency > 5*time.Second {
		t.Fatalf("cancellation took %v, want within one scheduler beat", latency)
	}
	if cancelled.NumClasses != 0 {
		t.Fatalf("cancelled job leaked a result: %+v", cancelled)
	}
}
