package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sfcp"
	"sfcp/internal/workload"
)

// TestE2ERestartRecovery is the daemon-level persistence contract
// (ROADMAP: durable tiered storage): submit a mix of async jobs against
// -data-dir, shut the daemon down with work still queued, restart over
// the same directory, and check that interrupted jobs re-run to
// completion while the pre-shutdown result comes back byte-identical
// from disk — fetched over the binary wire, so "byte-identical" means
// the literal response bytes.
func TestE2ERestartRecovery(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-data-dir", dir, "-pool-workers", "1", "-spill-n", "1024", "-max-n", fmt.Sprint(4 << 20)}

	ts1, close1 := newDaemonCloser(t, args...)

	// One small job runs to completion before the "crash"; its binary
	// result bytes are the oracle for the after-restart fetch.
	doneID := submitJob(t, ts1, sfcp.Instance(workload.RandomFunction(7, 2000, 3)))
	waitDone(t, ts1, doneID)
	wantBytes := resultBytes(t, ts1, doneID)

	// A burst of heavyweight jobs through a single dispatcher, submitted
	// over the binary wire so submission far outpaces solving: by the
	// time shutdown begins only the head of the queue has run — the rest
	// are still queued, exactly the state a crash strands.
	var pending []string
	for i := 0; i < 6; i++ {
		ins := sfcp.Instance(workload.RandomFunction(int64(100+i), 1<<21, 4))
		pending = append(pending, submitJobBinary(t, ts1, ins))
	}
	close1() // durable shutdown: queued journal records stay non-terminal

	ts2, close2 := newDaemonCloser(t, args...)
	defer close2()

	// Every stranded job re-runs to done on the new daemon.
	for _, id := range pending {
		waitDone(t, ts2, id)
	}

	// The pre-shutdown result is served from the blob tier, bit for bit.
	if got := resultBytes(t, ts2, doneID); !bytes.Equal(got, wantBytes) {
		t.Fatalf("restored result differs: %d bytes vs %d", len(got), len(wantBytes))
	}

	// The recovery counters prove the restart actually re-queued work
	// rather than re-submitting it.
	m := metricsBody(t, ts2)
	requeued := metricValue(t, m, `sfcpd_store_recovered_jobs_total{outcome="requeued"}`)
	restored := metricValue(t, m, `sfcpd_store_recovered_jobs_total{outcome="restored"}`)
	if requeued < 1 {
		t.Errorf("requeued = %d, want >= 1 (did shutdown drain the queue?)", requeued)
	}
	if restored < 1 {
		t.Errorf("restored = %d, want >= 1 (the done job's record)", restored)
	}
}

func submitJob(t *testing.T, ts *httptest.Server, ins sfcp.Instance) string {
	t.Helper()
	body, err := json.Marshal(map[string]any{"algorithm": "linear", "f": ins.F, "b": ins.B})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
	}
	return snap.ID
}

func submitJobBinary(t *testing.T, ts *httptest.Server, ins sfcp.Instance) string {
	t.Helper()
	var buf bytes.Buffer
	if err := ins.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs?algorithm=linear", sfcp.BinaryMediaType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("binary submit: status %d err %v", resp.StatusCode, err)
	}
	return snap.ID
}

func waitDone(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var snap struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch snap.State {
		case "done":
			return
		case "failed", "cancelled":
			t.Fatalf("job %s ended %s: %s", id, snap.State, snap.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
}

// resultBytes fetches a done job's labels over the binary wire format.
func resultBytes(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/jobs/"+id+"/result", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", sfcp.BinaryMediaType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result fetch: status %d: %s", resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

// metricValue extracts one un-labeled-or-exact-match sample from an
// exposition body.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v int64
			if _, err := fmt.Sscanf(rest, "%d", &v); err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
