package sfcp

import (
	"fmt"
	"testing"

	"sfcp/internal/workload"
)

// conformanceFamilies enumerates every internal/workload generator family,
// sized so the PRAM simulator stays fast while all structural regimes are
// exercised: random pseudo-forests, pure permutations, equivalent and
// distinct cycle families, deep brooms, wide stars, and unary DFAs.
var conformanceFamilies = []struct {
	name string
	gen  func(seed int64) workload.Instance
}{
	{"random", func(s int64) workload.Instance { return workload.RandomFunction(s, 240, 3) }},
	{"permutation", func(s int64) workload.Instance { return workload.RandomPermutation(s, 210, 2) }},
	{"cycles", func(s int64) workload.Instance { return workload.CycleFamily(s, 6, 24, 4) }},
	{"distinct-cycles", func(s int64) workload.Instance { return workload.DistinctCycles(s, 6, 18, 2) }},
	{"broom", func(s int64) workload.Instance { return workload.Broom(s, 200, 12, 4) }},
	{"star", func(s int64) workload.Instance { return workload.Star(s, 150, 3) }},
	{"dfa", func(s int64) workload.Instance { return workload.UnaryDFA(s, 180, 300) }},
}

// TestConformanceAllAlgorithms is the differential suite: every Algorithm
// over every workload family must return labels *identical* to Moore's —
// not merely the same partition, since all solvers normalize by first
// occurrence.
func TestConformanceAllAlgorithms(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, fam := range conformanceFamilies {
		for _, seed := range seeds {
			ins := Instance(fam.gen(seed))
			ref, err := SolveWith(ins, Options{Algorithm: AlgorithmMoore})
			if err != nil {
				t.Fatalf("%s/seed%d: moore reference: %v", fam.name, seed, err)
			}
			for _, algo := range Algorithms() {
				t.Run(fmt.Sprintf("%s/seed%d/%s", fam.name, seed, algo), func(t *testing.T) {
					res, err := SolveWith(ins, Options{Algorithm: algo, Seed: uint64(seed)})
					if err != nil {
						t.Fatal(err)
					}
					if res.NumClasses != ref.NumClasses {
						t.Fatalf("%d classes, moore found %d", res.NumClasses, ref.NumClasses)
					}
					for i := range res.Labels {
						if res.Labels[i] != ref.Labels[i] {
							t.Fatalf("labels[%d] = %d, moore says %d (first divergence)",
								i, res.Labels[i], ref.Labels[i])
						}
					}
				})
			}
		}
	}
}

// TestConformanceSolverBatch drives the same differential check through the
// reusable Solver's batch path, so the scratch-arena reuse and worker-budget
// splitting are covered by the conformance suite too.
func TestConformanceSolverBatch(t *testing.T) {
	instances := make([]Instance, len(conformanceFamilies))
	refs := make([]Result, len(conformanceFamilies))
	for i, fam := range conformanceFamilies {
		instances[i] = Instance(fam.gen(7))
		ref, err := SolveWith(instances[i], Options{Algorithm: AlgorithmMoore})
		if err != nil {
			t.Fatalf("%s: moore reference: %v", fam.name, err)
		}
		refs[i] = ref
	}
	for _, algo := range Algorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			s := NewSolver(Options{Algorithm: algo, Parallelism: 3, Seed: 7})
			results, err := s.SolveBatch(instances)
			if err != nil {
				t.Fatal(err)
			}
			for i, res := range results {
				if !SamePartition(res.Labels, refs[i].Labels) {
					t.Errorf("%s: partition disagrees with moore", conformanceFamilies[i].name)
					continue
				}
				for j := range res.Labels {
					if res.Labels[j] != refs[i].Labels[j] {
						t.Errorf("%s: labels[%d] = %d not normalized like moore's %d",
							conformanceFamilies[i].name, j, res.Labels[j], refs[i].Labels[j])
						break
					}
				}
			}
		})
	}
}
