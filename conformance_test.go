package sfcp

import (
	"fmt"
	"testing"

	"sfcp/internal/workload"
)

// conformanceFamilies enumerates every internal/workload generator family,
// sized so the PRAM simulator stays fast while all structural regimes are
// exercised: random pseudo-forests, pure permutations, equivalent and
// distinct cycle families, deep brooms, wide stars, and unary DFAs.
var conformanceFamilies = []struct {
	name string
	gen  func(seed int64) workload.Instance
}{
	{"random", func(s int64) workload.Instance { return workload.RandomFunction(s, 240, 3) }},
	{"permutation", func(s int64) workload.Instance { return workload.RandomPermutation(s, 210, 2) }},
	{"cycles", func(s int64) workload.Instance { return workload.CycleFamily(s, 6, 24, 4) }},
	{"distinct-cycles", func(s int64) workload.Instance { return workload.DistinctCycles(s, 6, 18, 2) }},
	{"broom", func(s int64) workload.Instance { return workload.Broom(s, 200, 12, 4) }},
	{"star", func(s int64) workload.Instance { return workload.Star(s, 150, 3) }},
	{"dfa", func(s int64) workload.Instance { return workload.UnaryDFA(s, 180, 300) }},
}

// TestConformanceAllAlgorithms is the differential suite: every Algorithm
// over every workload family must return labels *identical* to Moore's —
// not merely the same partition, since all solvers normalize by first
// occurrence.
func TestConformanceAllAlgorithms(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, fam := range conformanceFamilies {
		for _, seed := range seeds {
			ins := Instance(fam.gen(seed))
			ref, err := SolveWith(ins, Options{Algorithm: AlgorithmMoore})
			if err != nil {
				t.Fatalf("%s/seed%d: moore reference: %v", fam.name, seed, err)
			}
			for _, algo := range Algorithms() {
				t.Run(fmt.Sprintf("%s/seed%d/%s", fam.name, seed, algo), func(t *testing.T) {
					res, err := SolveWith(ins, Options{Algorithm: algo, Seed: uint64(seed)})
					if err != nil {
						t.Fatal(err)
					}
					if res.NumClasses != ref.NumClasses {
						t.Fatalf("%d classes, moore found %d", res.NumClasses, ref.NumClasses)
					}
					for i := range res.Labels {
						if res.Labels[i] != ref.Labels[i] {
							t.Fatalf("labels[%d] = %d, moore says %d (first divergence)",
								i, res.Labels[i], ref.Labels[i])
						}
					}
				})
			}
		}
	}
}

// TestConformanceResolve sweeps the incremental re-solve path over every
// workload family at three delta scales — a single edit, a √n burst, and
// an n/4 burst — and demands labels byte-identical to a full solve of the
// edited instance each time. The scales straddle the planner's crossover,
// so both the component-scoped path and the full-fallback path are pinned
// to the same contract.
func TestConformanceResolve(t *testing.T) {
	for _, fam := range conformanceFamilies {
		t.Run(fam.name, func(t *testing.T) {
			ins := Instance(fam.gen(11))
			n := len(ins.F)
			bursts := []int{1, intSqrt(n), n / 4}
			inc, err := NewIncremental(ins)
			if err != nil {
				t.Fatal(err)
			}
			edited := Instance{F: append([]int{}, ins.F...), B: append([]int{}, ins.B...)}
			rng := uint64(0x9e3779b97f4a7c15)
			next := func(mod int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int((rng >> 33) % uint64(mod))
			}
			for _, burst := range bursts {
				if burst < 1 {
					continue
				}
				delta := Delta{Edits: make([]Edit, burst)}
				for i := range delta.Edits {
					node := next(n)
					e := Edit{Node: node}
					switch next(3) {
					case 0:
						fv := next(n)
						e.F = &fv
						edited.F[node] = fv
					case 1:
						bv := next(5)
						e.B = &bv
						edited.B[node] = bv
					default:
						fv, bv := next(n), next(5)
						e.F, e.B = &fv, &bv
						edited.F[node], edited.B[node] = fv, bv
					}
					delta.Edits[i] = e
				}
				res, err := Resolve(inc, delta)
				if err != nil {
					t.Fatalf("burst %d: %v", burst, err)
				}
				full, err := SolveWith(edited, Options{})
				if err != nil {
					t.Fatalf("burst %d: full solve: %v", burst, err)
				}
				if res.NumClasses != full.NumClasses {
					t.Fatalf("burst %d: %d classes, full solve found %d (mode %s)",
						burst, res.NumClasses, full.NumClasses, res.Resolve.Mode)
				}
				for i := range res.Labels {
					if res.Labels[i] != full.Labels[i] {
						t.Fatalf("burst %d: labels[%d] = %d, full solve says %d (mode %s, first divergence)",
							burst, i, res.Labels[i], full.Labels[i], res.Resolve.Mode)
					}
				}
			}
		})
	}
}

func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// TestConformanceSolverBatch drives the same differential check through the
// reusable Solver's batch path, so the scratch-arena reuse and worker-budget
// splitting are covered by the conformance suite too.
func TestConformanceSolverBatch(t *testing.T) {
	instances := make([]Instance, len(conformanceFamilies))
	refs := make([]Result, len(conformanceFamilies))
	for i, fam := range conformanceFamilies {
		instances[i] = Instance(fam.gen(7))
		ref, err := SolveWith(instances[i], Options{Algorithm: AlgorithmMoore})
		if err != nil {
			t.Fatalf("%s: moore reference: %v", fam.name, err)
		}
		refs[i] = ref
	}
	for _, algo := range Algorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			s := NewSolver(Options{Algorithm: algo, Parallelism: 3, Seed: 7})
			results, err := s.SolveBatch(instances)
			if err != nil {
				t.Fatal(err)
			}
			for i, res := range results {
				if !SamePartition(res.Labels, refs[i].Labels) {
					t.Errorf("%s: partition disagrees with moore", conformanceFamilies[i].name)
					continue
				}
				for j := range res.Labels {
					if res.Labels[j] != refs[i].Labels[j] {
						t.Errorf("%s: labels[%d] = %d not normalized like moore's %d",
							conformanceFamilies[i].name, j, res.Labels[j], refs[i].Labels[j])
						break
					}
				}
			}
		})
	}
}
